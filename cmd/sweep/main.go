// Command sweep runs a (architecture × width × workload) grid and emits one
// CSV row per simulation — the raw-data exporter for downstream plotting.
//
//	sweep -archs InO,OoO,Ballerino -widths 4,8 -ops 100000 > results.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		archs  = flag.String("archs", strings.Join(ballerino.Architectures(), ","), "architectures")
		widths = flag.String("widths", "8", "issue widths")
		wls    = flag.String("workloads", strings.Join(ballerino.Workloads(), ","), "workload kernels")
		ops    = flag.Int("ops", 100_000, "μops per simulation")
		warm   = flag.Int("warmup", 0, "warm-up μops before measurement")
	)
	flag.Parse()

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	w.Write([]string{
		"arch", "width", "workload", "ops", "cycles", "ipc",
		"mispredict_rate", "violations", "energy_pj", "edp", "efficiency",
	})

	for _, arch := range strings.Split(*archs, ",") {
		for _, ws := range strings.Split(*widths, ",") {
			width, err := strconv.Atoi(strings.TrimSpace(ws))
			if err != nil {
				fatal(err)
			}
			for _, wl := range strings.Split(*wls, ",") {
				res, err := ballerino.Run(ballerino.Config{
					Arch:      strings.TrimSpace(arch),
					Width:     width,
					Workload:  strings.TrimSpace(wl),
					MaxOps:    *ops,
					WarmupOps: *warm,
				})
				if err != nil {
					fatal(err)
				}
				w.Write([]string{
					res.Arch,
					strconv.Itoa(res.Width),
					res.Workload,
					strconv.FormatUint(res.Committed, 10),
					strconv.FormatUint(res.Cycles, 10),
					fmt.Sprintf("%.4f", res.IPC),
					fmt.Sprintf("%.4f", res.MispredictRate),
					strconv.FormatUint(res.Violations, 10),
					fmt.Sprintf("%.0f", res.EnergyPJ),
					fmt.Sprintf("%.6g", res.EDP),
					fmt.Sprintf("%.6g", res.Efficiency),
				})
				w.Flush()
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
