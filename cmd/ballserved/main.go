// Command ballserved is the long-running telemetry service: it executes
// simulation jobs — submitted over HTTP or preloaded from a playlist file
// — and serves their live observability.
//
// Usage:
//
//	ballserved -addr :8344
//	ballserved -addr :8344 -playlist jobs.json -interval 5000
//	ballserved -addr :8344 -store-dir /var/lib/ballserved -max-retries 3 -job-timeout 2m
//
// Endpoints:
//
//	POST /jobs              submit a job ({"arch": ..., "workload": ..., "ops": ...})
//	GET  /jobs, /jobs/{id}  job status (the latter includes the run manifest)
//	POST /jobs/{id}/cancel  cancel a queued or running job
//	GET  /deadletter        jobs whose retry budget is exhausted
//	POST /jobs/{id}/retry   revive a dead-letter job
//	GET  /jobs/{id}/spans   lifecycle span timeline (?format=json|text|chrome)
//	GET  /metrics           Prometheus text exposition (latency histograms carry
//	                        exemplar trace IDs linking buckets to span trees)
//	GET  /stream            Server-Sent Events heartbeat stream
//	GET  /healthz, /readyz  liveness and readiness (503 while saturated or replaying)
//	GET  /debug/pprof/      net/http/pprof (worker goroutines are labeled with
//	                        job ID, workload and arch)
//
// The playlist file is a JSON array of job specs (a single object is also
// accepted), enqueued in order at startup.
//
// Every job's lifecycle is traced: a span tree (submit → queue.wait →
// attempt → result.store, with WAL, backoff and simulation children)
// correlated by a trace ID derived deterministically from the job ID —
// stable across restarts, so a trace spans crashes. Structured logs
// (-log-format text|json, written to stderr) carry the trace ID on every
// lifecycle record.
//
// With -store-dir the job queue is durable: every lifecycle transition is
// written ahead to an fsync'd log before it is acted on, so a crash —
// even `kill -9` — loses nothing. On restart the log is replayed: jobs
// that were queued, running or waiting on a retry re-enqueue, and jobs
// whose config+trace content key already has a stored result are served
// from the store without recomputation. SIGINT/SIGTERM trigger a
// graceful drain: in-flight HTTP requests and running jobs are given
// -grace to finish, sinks are flushed, and (with a store) unfinished
// jobs keep their durable state so the next boot resumes them.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobstore"
	"repro/internal/span"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process plumbing, so the crash-recovery e2e can
// re-exec the test binary as a real server process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ballserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "localhost:8344", "HTTP listen address")
		playlist   = fs.String("playlist", "", "JSON file of job specs to enqueue at startup")
		interval   = fs.Uint64("interval", 0, "heartbeat interval in cycles (0 = 10000)")
		maxQueue   = fs.Int("max-queue", 0, "admission bound on pending jobs; beyond it submissions shed with 429 (0 = 64, negative = unbounded)")
		workers    = fs.Int("workers", 1, "jobs executed concurrently (traces are shared across workers)")
		grace      = fs.Duration("grace", 30*time.Second, "graceful shutdown budget")
		storeDir   = fs.String("store-dir", "", "durable job-store directory (empty = in-memory only, no crash safety)")
		jobTimeout = fs.Duration("job-timeout", 0, "per-job execution deadline; a timed-out attempt fails with stage \"timeout\" (0 = none)")
		maxRetries = fs.Int("max-retries", 0, "retries per job with capped exponential backoff before it parks in the dead-letter tier")
		chaos      = fs.String("chaos", "", "seeded service-layer chaos, e.g. \"seed=7,fail=0.25\" (testing only)")
		logFormat  = fs.String("log-format", "text", "structured log format on stderr: text or json")
		maxTraces  = fs.Int("max-traces", 0, "lifecycle span trees retained for /jobs/{id}/spans (0 = 1024, negative = tracing off)")
	)
	fs.Int("queue", 0, "deprecated alias for -max-queue")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *maxQueue == 0 {
		if q := fs.Lookup("queue").Value.(flag.Getter).Get().(int); q != 0 {
			*maxQueue = q
		}
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(stderr, nil)
	default:
		fmt.Fprintf(stderr, "bad -log-format %q: want text or json\n", *logFormat)
		return 2
	}
	logger := slog.New(handler)

	var tracer *span.Tracer
	if *maxTraces >= 0 {
		tracer = span.NewTracer(*maxTraces)
	}

	var specs []telemetry.JobSpec
	if *playlist != "" {
		var err error
		if specs, err = loadPlaylist(*playlist); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	var store *jobstore.Store
	if *storeDir != "" {
		var err error
		if store, err = jobstore.Open(*storeDir); err != nil {
			fmt.Fprintf(stderr, "job store: %v\n", err)
			return 1
		}
		rec := store.Recovery()
		fmt.Fprintf(stdout, "job store %s: %d records replayed, %d resumable, %d completed",
			*storeDir, rec.Records, rec.Resumable, rec.Completed)
		if rec.TornTail {
			fmt.Fprint(stdout, " (torn tail truncated)")
		}
		fmt.Fprintln(stdout)
	}

	srv, err := telemetry.NewServer(telemetry.Options{
		HeartbeatCycles: *interval,
		QueueDepth:      *maxQueue,
		Workers:         *workers,
		Store:           store,
		JobTimeout:      *jobTimeout,
		MaxRetries:      *maxRetries,
		ChaosSpec:       *chaos,
		Tracer:          tracer,
		Logger:          logger,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	srv.Start()
	for i, spec := range specs {
		job, err := srv.Submit(spec)
		if err != nil {
			fmt.Fprintf(stderr, "playlist entry %d: %v\n", i, err)
			return 1
		}
		fmt.Fprintf(stdout, "queued job %d: %s on %s\n", job.ID, spec.Workload, spec.Arch)
	}

	// Catch shutdown signals before announcing the address: a harness
	// that SIGTERMs as soon as it sees the listen line must hit the
	// graceful path, not the default disposition.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	// The resolved address is printed (not just the flag) so harnesses
	// using ":0" learn the real port.
	fmt.Fprintf(stdout, "ballserved listening on %s\n", ln.Addr())
	select {
	case err := <-errCh:
		fmt.Fprintln(stderr, err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	fmt.Fprintln(stdout, "shutting down...")

	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	code := 0
	if err := httpSrv.Shutdown(sctx); err != nil {
		fmt.Fprintf(stderr, "http shutdown: %v\n", err)
		code = 1
	}
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintf(stderr, "job worker shutdown: %v\n", err)
		code = 1
	}
	return code
}

// loadPlaylist reads a JSON array of job specs (or a single spec object).
func loadPlaylist(path string) ([]telemetry.JobSpec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("playlist: %w", err)
	}
	var specs []telemetry.JobSpec
	if err := strictUnmarshal(b, &specs); err != nil {
		var one telemetry.JobSpec
		if oneErr := strictUnmarshal(b, &one); oneErr != nil {
			return nil, fmt.Errorf("playlist %s: %w", path, err)
		}
		specs = []telemetry.JobSpec{one}
	}
	return specs, nil
}

func strictUnmarshal(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Trailing garbage after the JSON value is an error, not ignored.
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return errors.New("trailing data after JSON value")
	}
	return nil
}
