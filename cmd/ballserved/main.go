// Command ballserved is the long-running telemetry service: it executes
// simulation jobs — submitted over HTTP or preloaded from a playlist file
// — and serves their live observability.
//
// Usage:
//
//	ballserved -addr :8344
//	ballserved -addr :8344 -playlist jobs.json -interval 5000
//
// Endpoints:
//
//	POST /jobs              submit a job ({"arch": ..., "workload": ..., "ops": ...})
//	GET  /jobs, /jobs/{id}  job status (the latter includes the run manifest)
//	POST /jobs/{id}/cancel  cancel a queued or running job
//	GET  /metrics           Prometheus text exposition
//	GET  /stream            Server-Sent Events heartbeat stream
//	GET  /healthz, /readyz  liveness and readiness
//	GET  /debug/pprof/      net/http/pprof
//
// The playlist file is a JSON array of job specs (a single object is also
// accepted), enqueued in order at startup. SIGINT/SIGTERM trigger a
// graceful shutdown: in-flight HTTP requests and the running job are given
// -grace to finish, the running job's sinks are flushed, and queued jobs
// are marked cancelled.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "localhost:8344", "HTTP listen address")
		playlist = flag.String("playlist", "", "JSON file of job specs to enqueue at startup")
		interval = flag.Uint64("interval", 0, "heartbeat interval in cycles (0 = 10000)")
		queue    = flag.Int("queue", 0, "pending-job queue depth (0 = 64)")
		workers  = flag.Int("workers", 1, "jobs executed concurrently (traces are shared across workers)")
		grace    = flag.Duration("grace", 30*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	var specs []telemetry.JobSpec
	if *playlist != "" {
		var err error
		if specs, err = loadPlaylist(*playlist); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	srv := telemetry.NewServer(telemetry.Options{
		HeartbeatCycles: *interval,
		QueueDepth:      *queue,
		Workers:         *workers,
	})
	srv.Start()
	for i, spec := range specs {
		job, err := srv.Submit(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "playlist entry %d: %v\n", i, err)
			return 1
		}
		fmt.Printf("queued job %d: %s on %s\n", job.ID, spec.Workload, spec.Arch)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("ballserved listening on %s\n", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	fmt.Println("shutting down...")

	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	code := 0
	if err := httpSrv.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "http shutdown: %v\n", err)
		code = 1
	}
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "job worker shutdown: %v\n", err)
		code = 1
	}
	return code
}

// loadPlaylist reads a JSON array of job specs (or a single spec object).
func loadPlaylist(path string) ([]telemetry.JobSpec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("playlist: %w", err)
	}
	var specs []telemetry.JobSpec
	if err := strictUnmarshal(b, &specs); err != nil {
		var one telemetry.JobSpec
		if oneErr := strictUnmarshal(b, &one); oneErr != nil {
			return nil, fmt.Errorf("playlist %s: %w", path, err)
		}
		specs = []telemetry.JobSpec{one}
	}
	return specs, nil
}

func strictUnmarshal(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Trailing garbage after the JSON value is an error, not ignored.
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return errors.New("trailing data after JSON value")
	}
	return nil
}
