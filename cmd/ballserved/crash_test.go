package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/span"
	"repro/internal/telemetry"
)

// The crash-recovery e2e needs ballserved as a real OS process it can
// `kill -9`. Rather than building a second binary, the test re-execs
// this test binary: with BALLSERVED_E2E=1 TestMain skips the test
// runner and becomes the server (flags arrive unit-separated in
// BALLSERVED_E2E_ARGS). The child inherits the race detector, so data
// races anywhere in the serving path fail the e2e too.
func TestMain(m *testing.M) {
	if os.Getenv("BALLSERVED_E2E") == "1" {
		os.Exit(run(strings.Split(os.Getenv("BALLSERVED_E2E_ARGS"), "\x1f"), os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// serverProc is one re-execed ballserved process.
type serverProc struct {
	cmd    *exec.Cmd
	url    string
	stderr *bytes.Buffer
}

// startServer re-execs the test binary as a ballserved process on an
// ephemeral port and waits for its listen line.
func startServer(t *testing.T, args ...string) *serverProc {
	t.Helper()
	args = append([]string{"-addr", "127.0.0.1:0"}, args...)
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"BALLSERVED_E2E=1",
		"BALLSERVED_E2E_ARGS="+strings.Join(args, "\x1f"),
	)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serverProc{cmd: cmd, stderr: &stderr}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "ballserved listening on "); ok {
				addrCh <- rest
			}
		}
	}()
	select {
	case addr := <-addrCh:
		p.url = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("server did not report its address; stderr:\n%s", stderr.String())
	}
	return p
}

// stop SIGTERMs the process (graceful drain) and requires a clean exit —
// a race report or leaked shutdown error in the child fails the test.
func (p *serverProc) stop(t *testing.T) {
	t.Helper()
	p.cmd.Process.Signal(syscall.SIGTERM)
	if err := waitTimeout(p.cmd, 60*time.Second); err != nil {
		t.Fatalf("graceful shutdown: %v; stderr:\n%s", err, p.stderr.String())
	}
}

func waitTimeout(cmd *exec.Cmd, d time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		cmd.Process.Kill()
		return fmt.Errorf("process did not exit within %s", d)
	}
}

func getJobs(t *testing.T, url string) []telemetry.JobView {
	t.Helper()
	resp, err := http.Get(url + "/jobs")
	if err != nil {
		t.Fatalf("GET /jobs: %v", err)
	}
	defer resp.Body.Close()
	var views []telemetry.JobView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatalf("decode /jobs: %v", err)
	}
	return views
}

// canonicalManifests fetches every job's manifest and returns its
// canonical bytes keyed by job ID.
func canonicalManifests(t *testing.T, url string, n int) map[int][]byte {
	t.Helper()
	out := make(map[int][]byte, n)
	for id := 1; id <= n; id++ {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", url, id))
		if err != nil {
			t.Fatal(err)
		}
		var v telemetry.JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if v.State != telemetry.JobDone || v.Manifest == nil {
			t.Fatalf("job %d = %q with manifest %v, want done with manifest", id, v.State, v.Manifest != nil)
		}
		b, err := v.Manifest.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		out[id] = b
	}
	return out
}

func waitJobs(t *testing.T, url string, ok func([]telemetry.JobView) bool, what string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for time.Now().Before(deadline) {
		if ok(getJobs(t, url)) {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; jobs now: %+v", what, getJobs(t, url))
}

// TestCrashRecoveryByteIdentical is the durability acceptance test: a
// ballserved campaign is SIGKILLed mid-flight, restarted over the same
// store directory, and must finish every job — the completed-before-crash
// job served from the store, the in-flight and queued jobs resumed — with
// canonical manifests byte-identical to an uninterrupted run of the same
// playlist.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	// Job 1 finishes quickly; job 2 is long enough (tens of seconds under
	// -race) that the kill lands while it is executing; job 3 is still
	// queued behind it on the single worker.
	playlist := filepath.Join(t.TempDir(), "jobs.json")
	specs := `[
		{"arch": "Ballerino", "workload": "store-load", "ops": 20000},
		{"arch": "Ballerino", "workload": "stream", "ops": 400000},
		{"arch": "CASINO", "workload": "store-load", "ops": 20000}
	]`
	if err := os.WriteFile(playlist, []byte(specs), 0o644); err != nil {
		t.Fatal(err)
	}
	const jobs = 3
	allDone := func(vs []telemetry.JobView) bool {
		done := 0
		for _, v := range vs {
			if v.State == telemetry.JobDone {
				done++
			}
		}
		return done == jobs
	}

	storeDir := t.TempDir()
	first := startServer(t, "-store-dir", storeDir, "-playlist", playlist, "-interval", "2000")
	waitJobs(t, first.url, func(vs []telemetry.JobView) bool {
		var oneDone, oneRunning bool
		for _, v := range vs {
			oneDone = oneDone || v.State == telemetry.JobDone
			oneRunning = oneRunning || v.State == telemetry.JobRunning
		}
		return oneDone && oneRunning
	}, "one job done and one running before the kill")
	// Remember the running job's identity: its trace must survive the
	// crash under the same ID.
	var victimID int
	var victimTrace string
	for _, v := range getJobs(t, first.url) {
		if v.State == telemetry.JobRunning {
			victimID, victimTrace = v.ID, v.TraceID
		}
	}
	if victimTrace == "" {
		t.Fatal("running job has no trace_id before the kill")
	}
	// The crash: no signal handler runs, no flush, no checkpoint.
	if err := first.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	first.cmd.Wait()

	// Same heartbeat as the killed server: the occupancy/pressure
	// histograms in the manifest are sampled per heartbeat, so the
	// byte-identical contract holds for a fixed observability config.
	second := startServer(t, "-store-dir", storeDir, "-interval", "2000")
	waitJobs(t, second.url, allDone, "recovery to finish every job")
	views := getJobs(t, second.url)
	var resumed, fromStore int
	for _, v := range views {
		if v.Resumed {
			resumed++
		}
		if v.FromStore {
			fromStore++
		}
	}
	if resumed == 0 {
		t.Errorf("no job flagged resumed after crash recovery: %+v", views)
	}
	if fromStore == 0 {
		t.Errorf("pre-crash completed job not served from the store: %+v", views)
	}
	recovered := canonicalManifests(t, second.url, jobs)

	// The killed job's span tree must span both process lifetimes under
	// one stable trace ID: the pre-crash attempt synthesized from the WAL
	// (marked interrupted), a replay span, and the live post-recovery
	// attempt that finished the job.
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%d/spans", second.url, victimID))
	if err != nil {
		t.Fatal(err)
	}
	var tree span.Tree
	if err := json.NewDecoder(resp.Body).Decode(&tree); err != nil {
		t.Fatalf("decode spans: %v", err)
	}
	resp.Body.Close()
	if tree.TraceID != victimTrace {
		t.Errorf("post-recovery trace ID %q, want the pre-crash %q", tree.TraceID, victimTrace)
	}
	var walAttempts, interrupted, liveAttempts, replays int
	for _, v := range tree.Spans {
		switch v.Name {
		case "attempt":
			if v.Attr("source") == "wal" {
				walAttempts++
				if v.Attr("interrupted") == "true" {
					interrupted++
				}
			} else {
				liveAttempts++
			}
		case "replay":
			replays++
		}
		if v.Open {
			t.Errorf("span %q still open in the finished job's trace", v.Name)
		}
	}
	if walAttempts == 0 || interrupted == 0 {
		t.Errorf("no interrupted WAL-synthesized attempt in trace (%d wal, %d interrupted)",
			walAttempts, interrupted)
	}
	if replays != 1 {
		t.Errorf("%d replay spans, want 1", replays)
	}
	if liveAttempts == 0 {
		t.Error("no live post-recovery attempt span in trace")
	}
	second.stop(t)

	clean := startServer(t, "-store-dir", t.TempDir(), "-playlist", playlist, "-interval", "2000")
	waitJobs(t, clean.url, allDone, "uninterrupted run to finish")
	baseline := canonicalManifests(t, clean.url, jobs)
	clean.stop(t)

	for id := 1; id <= jobs; id++ {
		if !bytes.Equal(recovered[id], baseline[id]) {
			t.Errorf("job %d: crash-recovered canonical manifest differs from clean run\nrecovered: %s\nclean:     %s",
				id, recovered[id], baseline[id])
		}
	}
}

// TestGracefulDrainResumes: SIGTERM (not SIGKILL) mid-job leaves the
// running job durably unfinished and the process exits 0; the next boot
// resumes and completes it.
func TestGracefulDrainResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	storeDir := t.TempDir()
	playlist := filepath.Join(t.TempDir(), "job.json")
	if err := os.WriteFile(playlist, []byte(`{"arch": "Ballerino", "workload": "stream", "ops": 400000}`), 0o644); err != nil {
		t.Fatal(err)
	}
	first := startServer(t, "-store-dir", storeDir, "-playlist", playlist)
	waitJobs(t, first.url, func(vs []telemetry.JobView) bool {
		return len(vs) == 1 && vs[0].State == telemetry.JobRunning
	}, "the job to start")
	first.stop(t)

	second := startServer(t, "-store-dir", storeDir)
	waitJobs(t, second.url, func(vs []telemetry.JobView) bool {
		return len(vs) == 1 && vs[0].State == telemetry.JobDone
	}, "the drained job to resume and finish")
	if vs := getJobs(t, second.url); !vs[0].Resumed {
		t.Errorf("drained job not flagged resumed: %+v", vs[0])
	}
	// The durability counters are on /metrics for operators.
	resp, err := http.Get(second.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "ballserved_jobs_resumed_total 1") {
		t.Error("resumed_total not exported on /metrics")
	}
	second.stop(t)
}
