// Command ballsim runs a single Ballerino-reproduction simulation (or a
// small comparison sweep) and prints the results.
//
// Usage:
//
//	ballsim -arch Ballerino -workload stream -ops 200000
//	ballsim -compare -ops 100000            # all architectures × kernels
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"repro"
)

func main() {
	var (
		arch    = flag.String("arch", "Ballerino", "microarchitecture (see -list)")
		wl      = flag.String("workload", "stream", "workload kernel (see -list)")
		width   = flag.Int("width", 8, "issue width: 2, 4, 8 or 10")
		ops     = flag.Int("ops", 200_000, "dynamic μops to simulate")
		foot    = flag.Int64("footprint", 0, "data footprint in bytes (0 = default 8 MiB)")
		piqs    = flag.Int("piqs", 0, "override P-IQ count (0 = Table II)")
		depth   = flag.Int("piq-depth", 0, "override P-IQ depth (0 = Table II)")
		noMDP   = flag.Bool("no-mdp", false, "disable memory dependence prediction")
		dvfs    = flag.String("dvfs", "L4", "operating point L1..L4")
		audit   = flag.Bool("audit", false, "verify simulation invariants every cycle and cross-check commits against the golden model")
		inject  = flag.String("inject", "", "inject deterministic timing faults, e.g. seed=1,jitter=8,flush=2000,squeeze=50,mdp=100")
		list    = flag.Bool("list", false, "list architectures and workloads")
		compare = flag.Bool("compare", false, "run every architecture on every kernel")
		verbose = flag.Bool("v", false, "print scheduler counters and energy breakdown")
	)
	flag.Parse()

	if *list {
		fmt.Println("architectures:")
		for _, a := range ballerino.Architectures() {
			fmt.Printf("  %s\n", a)
		}
		fmt.Println("workloads:")
		for _, w := range ballerino.Workloads() {
			fmt.Printf("  %s\n", w)
		}
		return
	}

	if *compare {
		runCompare(*width, *ops, *foot)
		return
	}

	res, err := ballerino.Run(ballerino.Config{
		Arch:           *arch,
		Width:          *width,
		Workload:       *wl,
		FootprintBytes: *foot,
		MaxOps:         *ops,
		NumPIQs:        *piqs,
		PIQDepth:       *depth,
		DisableMDP:     *noMDP,
		DVFS:           *dvfs,
		Audit:          *audit,
		FaultSpec:      *inject,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		var se *ballerino.SimError
		if errors.As(err, &se) && se.Autopsy != "" {
			fmt.Fprintln(os.Stderr, se.Autopsy)
		}
		os.Exit(1)
	}
	fmt.Printf("%s on %s (%d-wide, %d μops)\n", res.Arch, res.Workload, res.Width, res.Committed)
	fmt.Printf("  cycles      %d\n", res.Cycles)
	fmt.Printf("  IPC         %.3f\n", res.IPC)
	fmt.Printf("  mispredict  %.2f%%\n", 100*res.MispredictRate)
	fmt.Printf("  violations  %d (flushes %d)\n", res.Violations, res.Flushes)
	if res.AuditChecks > 0 {
		fmt.Printf("  audit       %d cycle checks, %d μops golden-verified, 0 violations\n",
			res.AuditChecks, res.GoldenOps)
	}
	if res.InjectedFaults != nil {
		fmt.Printf("  injected    %d flushes, %d squeezes, %d mdp waits, %d jittered ops (+%d cycles)\n",
			res.InjectedFaults["flushes"], res.InjectedFaults["squeezes"],
			res.InjectedFaults["mdp_waits"], res.InjectedFaults["jittered_ops"],
			res.InjectedFaults["jitter_cycles"])
	}
	fmt.Printf("  energy      %.2f µJ (EDP %.3g pJ·s)\n", res.EnergyPJ/1e6, res.EDP)
	for _, cls := range []string{"Ld", "LdC", "Rst", "All"} {
		d := res.Delay[cls]
		fmt.Printf("  delay %-4s  d2d=%.1f d2r=%.1f r2i=%.1f (n=%d)\n",
			cls, d.DecodeToDispatch, d.DispatchToReady, d.ReadyToIssue, d.Count)
	}
	if *verbose {
		fmt.Println("  scheduler counters:")
		var keys []string
		for k := range res.SchedCounters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("    %-18s %d\n", k, res.SchedCounters[k])
		}
		fmt.Println("  energy by component (pJ):")
		var comps []string
		for k := range res.EnergyByComponent {
			comps = append(comps, k)
		}
		sort.Strings(comps)
		for _, k := range comps {
			fmt.Printf("    %-14s %.3g\n", k, res.EnergyByComponent[k])
		}
	}
}

func runCompare(width, ops int, foot int64) {
	archs := ballerino.Architectures()
	wls := ballerino.Workloads()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "arch")
	for _, w := range wls {
		fmt.Fprintf(tw, "\t%s", w)
	}
	fmt.Fprintf(tw, "\tGEOMEAN\n")
	base := map[string]float64{}
	for _, a := range archs {
		fmt.Fprintf(tw, "%s", a)
		var ipcs []float64
		for _, w := range wls {
			res, err := ballerino.Run(ballerino.Config{
				Arch: a, Width: width, Workload: w,
				FootprintBytes: foot, MaxOps: ops,
			})
			if err != nil {
				fmt.Fprintf(tw, "\tERR")
				fmt.Fprintln(os.Stderr, err)
				continue
			}
			if a == "InO" {
				base[w] = res.IPC
			}
			speedup := res.IPC
			if b := base[w]; b > 0 {
				speedup = res.IPC / b
			}
			ipcs = append(ipcs, speedup)
			fmt.Fprintf(tw, "\t%.2f", speedup)
		}
		fmt.Fprintf(tw, "\t%.2f\n", ballerino.GeoMean(ipcs))
		tw.Flush()
	}
}
