// Command ballsim runs a single Ballerino-reproduction simulation (or a
// small comparison sweep) and prints the results.
//
// Usage:
//
//	ballsim -arch Ballerino -workload stream -ops 200000
//	ballsim -compare -ops 100000            # all architectures × kernels
//	ballsim -trace run.trace.json -metrics run.csv   # observability sinks
//	ballsim -trace-out stream.balltrace      # record the μop trace to a file
//	ballsim -trace-in stream.balltrace -arch OoO     # replay a recorded trace
//	ballsim -json                            # machine-readable manifest
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"syscall"
	"text/tabwriter"

	"repro"
	"repro/internal/obs"
	topdownpkg "repro/internal/topdown"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		arch    = flag.String("arch", "Ballerino", "microarchitecture (see -list)")
		wl      = flag.String("workload", "stream", "workload kernel (see -list)")
		width   = flag.Int("width", 8, "issue width: 2, 4, 8 or 10")
		ops     = flag.Int("ops", 200_000, "dynamic μops to simulate")
		warmup  = flag.Int("warmup", 0, "warm-up μops before the measured region")
		foot    = flag.Int64("footprint", 0, "data footprint in bytes (0 = default 8 MiB)")
		piqs    = flag.Int("piqs", 0, "override P-IQ count (0 = Table II)")
		depth   = flag.Int("piq-depth", 0, "override P-IQ depth (0 = Table II)")
		noMDP   = flag.Bool("no-mdp", false, "disable memory dependence prediction")
		dvfs    = flag.String("dvfs", "L4", "operating point L1..L4")
		audit   = flag.Bool("audit", false, "verify simulation invariants every cycle and cross-check commits against the golden model")
		topdown = flag.Bool("topdown", false, "attribute every issue slot to a CPI-stack category and print the top-down breakdown")
		inject  = flag.String("inject", "", "inject deterministic timing faults, e.g. seed=1,jitter=8,flush=2000,squeeze=50,mdp=100")
		list    = flag.Bool("list", false, "list architectures and workloads")
		compare = flag.Bool("compare", false, "run every architecture on every kernel")
		par     = flag.Int("parallel", runtime.GOMAXPROCS(0), "simulations in flight for -compare (1 = sequential)")
		verbose = flag.Bool("v", false, "print scheduler counters and energy breakdown")

		traceIn  = flag.String("trace-in", "", "replay a recorded ballerino.trace/v1 file (overrides -workload/-footprint/-ops)")
		traceOut = flag.String("trace-out", "", "record the run's μop trace to a ballerino.trace/v1 file")

		trace    = flag.String("trace", "", "write a Chrome trace_event JSON file (chrome://tracing, Perfetto)")
		events   = flag.String("events", "", "write a JSONL pipeline event log")
		metrics  = flag.String("metrics", "", "write a CSV of per-interval counter deltas")
		interval = flag.Uint64("interval", 0, "heartbeat interval in cycles (0 = 10000)")
		manifest = flag.String("manifest", "", "write the run manifest JSON (default: alongside the first sink)")
		jsonOut  = flag.Bool("json", false, "print the run manifest as JSON instead of text")

		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("architectures:")
		for _, a := range ballerino.Architectures() {
			fmt.Printf("  %s\n", a)
		}
		fmt.Println("workloads:")
		for _, k := range ballerino.Kernels() {
			if !k.Extra {
				fmt.Printf("  %s\n", k.Name)
			}
		}
		fmt.Println("extra workloads:")
		for _, k := range ballerino.Kernels() {
			if k.Extra {
				fmt.Printf("  %s\n", k.Name)
			}
		}
		return 0
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	// SIGINT/SIGTERM cancel the simulation cooperatively: the pipeline
	// stops within a few thousand cycles and Run flushes every attached
	// sink, so an interrupted traced run still leaves valid partial
	// artifacts. A second signal kills the process immediately.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *compare {
		return runCompare(ctx, *width, *ops, *foot, *par, *jsonOut, *topdown)
	}

	cfg := ballerino.Config{
		Arch:           *arch,
		Width:          *width,
		Workload:       *wl,
		FootprintBytes: *foot,
		MaxOps:         *ops,
		WarmupOps:      *warmup,
		NumPIQs:        *piqs,
		PIQDepth:       *depth,
		DisableMDP:     *noMDP,
		DVFS:           *dvfs,
		Audit:          *audit,
		Topdown:        *topdown,
		FaultSpec:      *inject,
		TracePath:      *trace,
		EventsPath:     *events,
		MetricsPath:    *metrics,
		ManifestPath:   *manifest,
		ObsInterval:    *interval,
	}

	// Record/replay: -trace-in replays a file through the same batch API a
	// generated trace uses (the file's workload identity wins over the
	// flags); -trace-out records the trace this run would simulate. With
	// both, the imported trace is re-exported verbatim.
	if *traceIn != "" {
		t, err := ballerino.ImportTrace(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		cfg = t.Configure(cfg)
	} else if *traceOut != "" {
		t, err := ballerino.PrepareTrace(ctx, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		cfg.Trace = t
	}
	if *traceOut != "" {
		if err := ballerino.ExportTrace(*traceOut, cfg.Trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("recorded %s: %s (%d μops)\n", *traceOut, cfg.Trace.Workload(), cfg.Trace.Ops())
	}

	res, err := ballerino.RunContext(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		var se *ballerino.SimError
		if errors.As(err, &se) && se.Autopsy != "" {
			fmt.Fprintln(os.Stderr, se.Autopsy)
		}
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted: partial sinks were flushed and are valid")
			return 130
		}
		return 1
	}
	if *jsonOut {
		b, err := res.Manifest.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println(string(b))
		return 0
	}
	fmt.Printf("%s on %s (%d-wide, %d μops)\n", res.Arch, res.Workload, res.Width, res.Committed)
	fmt.Printf("  cycles      %d\n", res.Cycles)
	fmt.Printf("  IPC         %.3f\n", res.IPC)
	fmt.Printf("  mispredict  %.2f%%\n", 100*res.MispredictRate)
	fmt.Printf("  violations  %d (flushes %d)\n", res.Violations, res.Flushes)
	if res.AuditChecks > 0 {
		fmt.Printf("  audit       %d cycle checks, %d μops golden-verified, 0 violations\n",
			res.AuditChecks, res.GoldenOps)
	}
	if res.InjectedFaults != nil {
		fmt.Printf("  injected    %d flushes, %d squeezes, %d mdp waits, %d jittered ops (+%d cycles)\n",
			res.InjectedFaults["flushes"], res.InjectedFaults["squeezes"],
			res.InjectedFaults["mdp_waits"], res.InjectedFaults["jittered_ops"],
			res.InjectedFaults["jitter_cycles"])
	}
	fmt.Printf("  energy      %.2f µJ (EDP %.3g pJ·s)\n", res.EnergyPJ/1e6, res.EDP)
	for _, cls := range []string{"Ld", "LdC", "Rst", "All"} {
		d := res.Delay[cls]
		fmt.Printf("  delay %-4s  d2d=%.1f d2r=%.1f r2i=%.1f (n=%d)\n",
			cls, d.DecodeToDispatch, d.DispatchToReady, d.ReadyToIssue, d.Count)
	}
	if r := res.Topdown; r != nil {
		fmt.Printf("  top-down    CPI %.3f over %d slots (%d-wide × %d cycles)\n",
			r.CPI, r.TotalSlots, r.Width, r.Cycles)
		for c := topdownpkg.Category(0); c < topdownpkg.NumCategories; c++ {
			name := c.String()
			if r.Slots[name] == 0 {
				continue
			}
			fmt.Printf("    %-16s %6.2f%%  cpi %.4f\n",
				name, 100*r.Fractions[name], r.CPIStack[name])
		}
		if r.OverIssue > 0 {
			fmt.Printf("    %-16s %d slots beyond width (IXU)\n", "over-issue", r.OverIssue)
		}
	}
	if sinks := res.Manifest.Sinks; len(sinks) > 0 {
		for _, s := range sinks {
			fmt.Printf("  wrote       %s (%s)\n", s.Path, s.Kind)
		}
	}
	if *verbose {
		fmt.Println("  scheduler counters:")
		var keys []string
		for k := range res.SchedCounters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("    %-18s %d\n", k, res.SchedCounters[k])
		}
		fmt.Println("  energy by component (pJ):")
		var comps []string
		for k := range res.EnergyByComponent {
			comps = append(comps, k)
		}
		sort.Strings(comps)
		for _, k := range comps {
			fmt.Printf("    %-14s %.3g\n", k, res.EnergyByComponent[k])
		}
	}
	return 0
}

func runCompare(ctx context.Context, width, ops int, foot int64, par int, jsonOut, topdown bool) int {
	archs := ballerino.Architectures()
	var wls []string
	for _, k := range ballerino.Kernels() {
		if !k.Extra {
			wls = append(wls, k.Name)
		}
	}

	// One campaign over the whole grid: each kernel's trace is generated
	// once and shared by every architecture. Results arrive in grid order
	// (arch-major), so slot a*len(wls)+w is architecture a on kernel w.
	var cfgs []ballerino.Config
	for _, a := range archs {
		for _, w := range wls {
			cfgs = append(cfgs, ballerino.Config{
				Arch: a, Width: width, Workload: w,
				FootprintBytes: foot, MaxOps: ops, Topdown: topdown,
			})
		}
	}
	batch := ballerino.RunAll(ctx, cfgs, ballerino.BatchOptions{Parallelism: par})
	slot := func(a, w int) *ballerino.RunResult { return &batch.Results[a*len(wls)+w] }

	if jsonOut {
		var manifests []*obs.Manifest
		for i := range archs {
			for j := range wls {
				rr := slot(i, j)
				if rr.Err != nil {
					fmt.Fprintln(os.Stderr, rr.Err)
					if errors.Is(rr.Err, context.Canceled) {
						return 130
					}
					continue
				}
				manifests = append(manifests, rr.Result.Manifest)
			}
		}
		b, err := json.MarshalIndent(manifests, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println(string(b))
		return 0
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "arch")
	for _, w := range wls {
		fmt.Fprintf(tw, "\t%s", w)
	}
	fmt.Fprintf(tw, "\tGEOMEAN\n")
	base := map[string]float64{}
	for i, a := range archs {
		fmt.Fprintf(tw, "%s", a)
		var ipcs []float64
		for j, w := range wls {
			rr := slot(i, j)
			if rr.Err != nil {
				fmt.Fprintf(tw, "\tERR")
				fmt.Fprintln(os.Stderr, rr.Err)
				if errors.Is(rr.Err, context.Canceled) {
					tw.Flush()
					return 130
				}
				continue
			}
			res := rr.Result
			if a == "InO" {
				base[w] = res.IPC
			}
			speedup := res.IPC
			if b := base[w]; b > 0 {
				speedup = res.IPC / b
			}
			ipcs = append(ipcs, speedup)
			fmt.Fprintf(tw, "\t%.2f", speedup)
		}
		fmt.Fprintf(tw, "\t%.2f\n", ballerino.GeoMean(ipcs))
		tw.Flush()
	}

	if topdown {
		// Per-architecture CPI stacks, averaged over the kernels: each
		// column is a category's share of the total slot budget.
		fmt.Println("\ntop-down slot shares (% of issue slots, all kernels):")
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "arch")
		for _, name := range topdownpkg.Names() {
			fmt.Fprintf(tw, "\t%s", name)
		}
		fmt.Fprintln(tw)
		for i, a := range archs {
			var slots [topdownpkg.NumCategories]uint64
			var total uint64
			for j := range wls {
				rr := slot(i, j)
				if rr.Err != nil || rr.Result.Topdown == nil {
					continue
				}
				for c, n := range rr.Result.Topdown.Counts {
					slots[c] += n
				}
				total += rr.Result.Topdown.TotalSlots
			}
			if total == 0 {
				continue
			}
			fmt.Fprintf(tw, "%s", a)
			for _, n := range slots {
				fmt.Fprintf(tw, "\t%.1f", 100*float64(n)/float64(total))
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	return 0
}
