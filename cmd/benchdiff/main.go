// Command benchdiff compares two performance trajectories (or emits a new
// one) for manifest-based regression tracking.
//
// Usage:
//
//	benchdiff BASE.json HEAD.json            # compare, exit 1 on regression
//	benchdiff -ipc 0.02 -energy 0.05 BASE HEAD
//	benchdiff -emit -o BENCH_pr.json -n 5    # run the tier-1 micro set
//	benchdiff -json BASE HEAD                # machine-readable report
//
// Inputs may be "ballerino.bench/v1" trajectories (the -emit output), a
// single `ballsim -json` run manifest, or a JSON array of manifests
// (`ballsim -compare -json`); manifests become one-sample points.
//
// Comparison is benchstat-style: per metric, the mean and 95% confidence
// interval over the repeated samples. A regression is a relative change in
// the bad direction (IPC down, energy/cycles up) beyond the metric's
// threshold whose confidence intervals do not overlap. The simulator is
// deterministic, so IPC/energy/cycle means are exact and any flagged
// regression is a real behavioural change.
//
// Exit codes: 0 clean, 1 regression detected, 2 operational error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"text/tabwriter"

	"repro/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		emit    = flag.Bool("emit", false, "run the tier-1 microbenchmark set and write a trajectory instead of comparing")
		out     = flag.String("o", "BENCH_pr.json", "output path for -emit")
		n       = flag.Int("n", 5, "repetitions per configuration for -emit")
		ipcTh   = flag.Float64("ipc", 0.02, "max tolerated relative IPC decrease (0 disables)")
		enTh    = flag.Float64("energy", 0, "max tolerated relative energy increase (0 disables)")
		cycTh   = flag.Float64("cycles", 0, "max tolerated relative cycle increase (0 disables)")
		jsonOut = flag.Bool("json", false, "print the comparison report as JSON")
		par     = flag.Int("parallel", runtime.GOMAXPROCS(0), "runs in flight at once for -emit (1 = sequential)")
	)
	flag.Parse()

	if *emit {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		tr, err := bench.Collect(ctx, bench.DefaultConfigs(), *n, *par)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if err := tr.WriteFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Printf("wrote %s: %d points × %d samples\n", *out, len(tr.Points), *n)
		return 0
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] BASE.json HEAD.json  (or -emit -o FILE -n N)")
		flag.PrintDefaults()
		return 2
	}
	base, err := bench.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	head, err := bench.Load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	rep := bench.Compare(base, head, bench.Thresholds{IPC: *ipcTh, Energy: *enTh, Cycles: *cycTh})
	if *jsonOut {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Println(string(b))
	} else {
		printReport(rep)
	}
	if rep.Regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond thresholds\n", rep.Regressions)
		return 1
	}
	return 0
}

func printReport(rep *bench.Report) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "point\tmetric\tbase\thead\tdelta\t")
	for _, pd := range rep.Points {
		for _, d := range pd.Deltas {
			mark := ""
			if d.Regression {
				mark = "REGRESSION"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%+.2f%%\t%s\n",
				pd.Key, d.Metric, fmtCI(d.BaseMean, d.BaseCI), fmtCI(d.HeadMean, d.HeadCI),
				100*d.Relative, mark)
		}
	}
	tw.Flush()
	for _, k := range rep.BaseOnly {
		fmt.Printf("only in base: %s\n", k)
	}
	for _, k := range rep.HeadOnly {
		fmt.Printf("only in head: %s\n", k)
	}
}

func fmtCI(mean, ci float64) string {
	if ci == 0 {
		return fmt.Sprintf("%.4g", mean)
	}
	return fmt.Sprintf("%.4g±%.2g", mean, ci)
}
