// Command benchdiff compares two performance trajectories (or emits a new
// one) for manifest-based regression tracking.
//
// Usage:
//
//	benchdiff BASE.json HEAD.json            # compare, exit 1 on regression
//	benchdiff -ipc 0.02 -energy 0.05 BASE HEAD
//	benchdiff -emit -o BENCH_pr.json -n 5    # run the tier-1 micro set
//	benchdiff -json BASE HEAD                # machine-readable report
//	benchdiff -speedup 1.5 BASE HEAD         # also require a 1.5× wall-time win
//
// Inputs may be "ballerino.bench/v1" trajectories (the -emit output), a
// single `ballsim -json` run manifest, or a JSON array of manifests
// (`ballsim -compare -json`); manifests become one-sample points.
//
// Comparison is benchstat-style: per metric, the mean and 95% confidence
// interval over the repeated samples. A regression is a relative change in
// the bad direction (IPC down, energy/cycles up) beyond the metric's
// threshold whose confidence intervals do not overlap. The simulator is
// deterministic, so IPC/energy/cycle means are exact and any flagged
// regression is a real behavioural change.
//
// -speedup gates the simulator's own wall time instead of the simulated
// machines: per gated workload (-speedup-workloads), the geometric mean
// of per-point best-of-N base/head wall-time ratios must reach the
// factor. CI uses it to hold hot-loop optimisations to their claims.
//
// Exit codes: 0 clean, 1 regression detected, 2 operational error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"text/tabwriter"

	"repro/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		emit    = flag.Bool("emit", false, "run the tier-1 microbenchmark set and write a trajectory instead of comparing")
		out     = flag.String("o", "BENCH_pr.json", "output path for -emit")
		n       = flag.Int("n", 5, "repetitions per configuration for -emit")
		ipcTh   = flag.Float64("ipc", 0.02, "max tolerated relative IPC decrease (0 disables)")
		enTh    = flag.Float64("energy", 0, "max tolerated relative energy increase (0 disables)")
		cycTh   = flag.Float64("cycles", 0, "max tolerated relative cycle increase (0 disables)")
		jsonOut = flag.Bool("json", false, "print the comparison report as JSON")
		par     = flag.Int("parallel", runtime.GOMAXPROCS(0), "runs in flight at once for -emit (1 = sequential)")

		speedup   = flag.Float64("speedup", 0, "required best-of-N wall-time geomean speedup of head over base per gated workload (0 disables)")
		speedupWl = flag.String("speedup-workloads", "branchy,pointer-chase", "comma-separated workloads the -speedup gate covers")
	)
	flag.Parse()

	if *emit {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		tr, err := bench.Collect(ctx, bench.DefaultConfigs(), *n, *par)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if err := tr.WriteFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Printf("wrote %s: %d points × %d samples\n", *out, len(tr.Points), *n)
		return 0
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] BASE.json HEAD.json  (or -emit -o FILE -n N)")
		flag.PrintDefaults()
		return 2
	}
	base, err := bench.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	head, err := bench.Load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	rep := bench.Compare(base, head, bench.Thresholds{IPC: *ipcTh, Energy: *enTh, Cycles: *cycTh})
	var srep *bench.SpeedupReport
	if *speedup > 0 {
		srep = bench.CompareSpeedup(base, head, splitList(*speedupWl), *speedup)
	}
	if *jsonOut {
		out := struct {
			*bench.Report
			Speedup *bench.SpeedupReport `json:"speedup,omitempty"`
		}{rep, srep}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Println(string(b))
	} else {
		printReport(rep)
		if srep != nil {
			fmt.Print(srep)
		}
	}
	code := 0
	if rep.Regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond thresholds\n", rep.Regressions)
		code = 1
	}
	if srep != nil && srep.Failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d workload(s) below the %.2f× wall-time speedup gate\n", srep.Failures, *speedup)
		code = 1
	}
	return code
}

// splitList parses a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func printReport(rep *bench.Report) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "point\tmetric\tbase\thead\tdelta\t")
	for _, pd := range rep.Points {
		for _, d := range pd.Deltas {
			mark := ""
			if d.Regression {
				mark = "REGRESSION"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%+.2f%%\t%s\n",
				pd.Key, d.Metric, fmtCI(d.BaseMean, d.BaseCI), fmtCI(d.HeadMean, d.HeadCI),
				100*d.Relative, mark)
		}
	}
	tw.Flush()
	for _, k := range rep.BaseOnly {
		fmt.Printf("only in base: %s\n", k)
	}
	for _, k := range rep.HeadOnly {
		fmt.Printf("only in head: %s\n", k)
	}
}

func fmtCI(mean, ci float64) string {
	if ci == 0 {
		return fmt.Sprintf("%.4g", mean)
	}
	return fmt.Sprintf("%.4g±%.2g", mean, ci)
}
