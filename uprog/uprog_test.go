package uprog_test

import (
	"testing"

	ballerino "repro"
	"repro/uprog"
)

// sumProgram computes 1+2+…+n into R(1).
func sumProgram(n int64) *uprog.Program {
	b := uprog.NewBuilder("sum")
	acc, i := uprog.R(1), uprog.R(2)
	b.MovImm(acc, 0)
	b.MovImm(i, n)
	loop := b.NewLabel()
	b.Bind(loop)
	b.Add(acc, acc, i)
	b.AddImm(i, i, -1)
	b.BranchNEZ(i, loop)
	return b.Build()
}

func TestCustomProgramRuns(t *testing.T) {
	p := sumProgram(1 << 30)
	res, err := ballerino.Run(ballerino.Config{
		Arch:   "OoO",
		Custom: p,
		MaxOps: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "sum" {
		t.Errorf("workload name = %q", res.Workload)
	}
	if res.Committed != 10_000 {
		t.Errorf("committed = %d", res.Committed)
	}
	if res.IPC <= 0 {
		t.Errorf("IPC = %v", res.IPC)
	}
}

func TestAllOpcodesAssemble(t *testing.T) {
	b := uprog.NewBuilder("all-ops")
	r1, r2, r3 := uprog.R(1), uprog.R(2), uprog.R(3)
	f1, f2, f3 := uprog.F(1), uprog.F(2), uprog.F(3)
	b.SetMem(0x1000, 5)
	b.SetReg(r2, 7)
	b.MovImm(r1, 0x1000)
	b.Load(r3, r1, 0)
	b.Add(r3, r3, r2)
	b.AddImm(r3, r3, 1)
	b.Sub(r3, r3, r2)
	b.Xor(r3, r3, r2)
	b.And(r3, r3, r2)
	b.Or(r3, r3, r2)
	b.Shl(r3, r3, r2)
	b.Shr(r3, r3, r2)
	b.Slt(r3, r3, r2)
	b.Mix(r3, r3, r2, 3)
	b.Mul(r3, r3, r2)
	b.Div(r3, r3, r2)
	b.FpAdd(f3, f1, f2)
	b.FpMul(f3, f3, f1)
	b.FpDiv(f3, f3, f2)
	b.Store(r3, r1, 8)
	b.Nop()
	skip := b.NewLabel()
	b.BranchEQZ(r3, skip)
	b.BranchLTZ(r3, skip)
	b.BranchGEZ(r3, skip)
	b.Bind(skip)
	end := b.NewLabel()
	b.Jmp(end)
	b.Bind(end)
	emitted := b.Len()
	p := b.Build()
	if p.Len() != emitted+1 { // +1 for the implicit halt
		t.Errorf("Len mismatch: program %d, emitted %d", p.Len(), emitted)
	}
	// The program must simulate cleanly on every microarchitecture.
	for _, arch := range ballerino.Architectures() {
		if _, err := ballerino.Run(ballerino.Config{Arch: arch, Custom: p, MaxOps: 50}); err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
	}
}

func TestUnboundLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build with unbound label did not panic")
		}
	}()
	b := uprog.NewBuilder("bad")
	b.Jmp(b.NewLabel())
	b.Build()
}

func TestRegisterConstructorsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("R(64) did not panic")
		}
	}()
	uprog.R(64)
}
