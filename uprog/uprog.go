// Package uprog is the public surface for authoring custom μop programs
// and running them on the simulated microarchitectures. It wraps the
// internal program builder with a stable, documented API:
//
//	b := uprog.NewBuilder("dot-product")
//	x, acc, p, n := uprog.R(1), uprog.R(2), uprog.R(3), uprog.R(4)
//	b.MovImm(p, 0x10000)
//	b.MovImm(acc, 0)
//	b.MovImm(n, 1024)
//	loop := b.NewLabel()
//	b.Bind(loop)
//	b.Load(x, p, 0)
//	b.Add(acc, acc, x)
//	b.AddImm(p, p, 8)
//	b.AddImm(n, n, -1)
//	b.BranchNEZ(n, loop)
//	prog := b.Build()
//
//	res, err := ballerino.Run(ballerino.Config{Arch: "Ballerino", Custom: prog})
//
// Programs are deterministic register-machine code: 64 integer (R) and 64
// floating-point (F) registers, byte-addressed memory accessed in 8-byte
// words. The functional executor derives the dynamic μop stream (with
// concrete addresses and branch outcomes) that the timing model replays.
package uprog

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// Reg names an architectural register; construct with R or F.
type Reg = isa.Reg

// R returns the i-th integer register (0..63).
func R(i int) Reg { return isa.R(i) }

// F returns the i-th floating-point register (0..63).
func F(i int) Reg { return isa.F(i) }

// Label marks a branch target; create with Builder.NewLabel and place with
// Builder.Bind.
type Label = prog.Label

// Program is an assembled μop program ready for simulation.
type Program struct {
	p *prog.Program
}

// Name returns the program's name.
func (p *Program) Name() string { return p.p.Name }

// Len returns the static instruction count (including the final halt).
func (p *Program) Len() int { return len(p.p.Insts) }

// Internal exposes the wrapped program to the simulator packages. It is
// not part of the stable API.
func (p *Program) Internal() *prog.Program { return p.p }

// Builder assembles a Program. The zero value is not usable; call
// NewBuilder.
type Builder struct {
	b *prog.Builder
}

// NewBuilder starts a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{b: prog.NewBuilder(name)}
}

// NewLabel creates an unbound branch target.
func (b *Builder) NewLabel() Label { return b.b.NewLabel() }

// Bind places a label at the next emitted instruction. Binding the same
// label twice panics.
func (b *Builder) Bind(l Label) { b.b.Bind(l) }

// SetMem seeds an initial 8-byte memory word (the address is aligned down).
func (b *Builder) SetMem(addr uint64, v int64) { b.b.SetMem(addr, v) }

// SetReg seeds an initial register value.
func (b *Builder) SetReg(r Reg, v int64) { b.b.SetReg(r, v) }

// MovImm emits dst = imm (1-cycle ALU).
func (b *Builder) MovImm(dst Reg, imm int64) { b.b.MovImm(dst, imm) }

// Add emits dst = a + b (1-cycle ALU).
func (b *Builder) Add(dst, a, c Reg) { b.b.Add(dst, a, c) }

// AddImm emits dst = a + imm (1-cycle ALU).
func (b *Builder) AddImm(dst, a Reg, imm int64) { b.b.AddImm(dst, a, imm) }

// Sub emits dst = a - b (1-cycle ALU).
func (b *Builder) Sub(dst, a, c Reg) { b.b.Sub(dst, a, c) }

// Xor emits dst = a ^ b (1-cycle ALU).
func (b *Builder) Xor(dst, a, c Reg) { b.b.ALU(isa.FnXor, dst, a, c, 0) }

// And emits dst = a & b (1-cycle ALU).
func (b *Builder) And(dst, a, c Reg) { b.b.ALU(isa.FnAnd, dst, a, c, 0) }

// Or emits dst = a | b (1-cycle ALU).
func (b *Builder) Or(dst, a, c Reg) { b.b.ALU(isa.FnOr, dst, a, c, 0) }

// Shl emits dst = a << (b & 63) (1-cycle ALU).
func (b *Builder) Shl(dst, a, c Reg) { b.b.ALU(isa.FnShl, dst, a, c, 0) }

// Shr emits the logical shift dst = a >> (b & 63) (1-cycle ALU).
func (b *Builder) Shr(dst, a, c Reg) { b.b.ALU(isa.FnShr, dst, a, c, 0) }

// Slt emits dst = (a < b) ? 1 : 0 (1-cycle ALU).
func (b *Builder) Slt(dst, a, c Reg) { b.b.ALU(isa.FnSlt, dst, a, c, 0) }

// Mix emits dst = hash(a, b, imm) — a cheap diffusion function for
// synthesising data-dependent addresses and conditions (1-cycle ALU).
func (b *Builder) Mix(dst, a, c Reg, imm int64) { b.b.Mix(dst, a, c, imm) }

// Mul emits dst = a * b on the 3-cycle integer multiplier.
func (b *Builder) Mul(dst, a, c Reg) { b.b.IntMul(dst, a, c) }

// Div emits dst = a / b on the 18-cycle unpipelined divider (0 divisor
// yields 0).
func (b *Builder) Div(dst, a, c Reg) { b.b.IntDiv(dst, a, c) }

// FpAdd emits dst = a + b on the 3-cycle FP adder.
func (b *Builder) FpAdd(dst, a, c Reg) { b.b.FpAdd(dst, a, c) }

// FpMul emits dst = a * b on the 4-cycle FP multiplier.
func (b *Builder) FpMul(dst, a, c Reg) { b.b.FpMul(dst, a, c) }

// FpDiv emits dst = a / b on the 12-cycle unpipelined FP divider.
func (b *Builder) FpDiv(dst, a, c Reg) { b.b.FpDiv(dst, a, c) }

// Load emits dst = mem[base + off] (AGU + data cache).
func (b *Builder) Load(dst, base Reg, off int64) { b.b.Load(dst, base, off) }

// Store emits mem[base + off] = data (AGU + store queue).
func (b *Builder) Store(data, base Reg, off int64) { b.b.Store(data, base, off) }

// Jmp emits an unconditional branch to l.
func (b *Builder) Jmp(l Label) { b.b.Jmp(l) }

// BranchEQZ branches to l when src == 0.
func (b *Builder) BranchEQZ(src Reg, l Label) { b.b.Branch(isa.BrEQZ, src, l) }

// BranchNEZ branches to l when src != 0.
func (b *Builder) BranchNEZ(src Reg, l Label) { b.b.Branch(isa.BrNEZ, src, l) }

// BranchLTZ branches to l when src < 0.
func (b *Builder) BranchLTZ(src Reg, l Label) { b.b.Branch(isa.BrLTZ, src, l) }

// BranchGEZ branches to l when src >= 0.
func (b *Builder) BranchGEZ(src Reg, l Label) { b.b.Branch(isa.BrGEZ, src, l) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.b.Nop() }

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return b.b.Len() }

// Build finalises the program; unbound labels panic.
func (b *Builder) Build() *Program { return &Program{p: b.b.Build()} }
