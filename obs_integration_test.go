package ballerino_test

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	ballerino "repro"
	"repro/internal/obs"
)

// runTraced runs one simulation with every observability sink attached and
// returns the result plus the sink paths.
func runTraced(t *testing.T, cfg ballerino.Config) (*ballerino.Result, string, string, string, string) {
	t.Helper()
	dir := t.TempDir()
	cfg.TracePath = filepath.Join(dir, "run.trace.json")
	cfg.EventsPath = filepath.Join(dir, "run.events.jsonl")
	cfg.MetricsPath = filepath.Join(dir, "run.metrics.csv")
	cfg.ManifestPath = filepath.Join(dir, "run.manifest.json")
	res, err := ballerino.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, cfg.TracePath, cfg.EventsPath, cfg.MetricsPath, cfg.ManifestPath
}

// TestChromeTraceWellFormed validates the emitted Chrome trace: it parses
// as trace_event JSON and every track's timestamps are monotonic.
func TestChromeTraceWellFormed(t *testing.T) {
	res, tracePath, _, _, _ := runTraced(t, ballerino.Config{
		Arch: "Ballerino", Workload: "store-load", MaxOps: 15_000, WarmupOps: 2_000,
		ObsInterval: 5_000,
	})

	b, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents     []obs.TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatalf("trace is not trace_event JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	type track struct{ pid, tid int }
	last := map[track]uint64{}
	var slices int
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "X", "i", "C":
		default:
			t.Fatalf("unexpected phase %q in %+v", e.Ph, e)
		}
		k := track{e.PID, e.TID}
		if e.TS < last[k] {
			t.Fatalf("track %v timestamps not monotonic: %d after %d", k, e.TS, last[k])
		}
		last[k] = e.TS
		if e.Ph == "X" {
			slices++
			if e.Dur == 0 {
				t.Errorf("zero-duration slice %+v", e)
			}
		}
	}
	if slices == 0 {
		t.Fatal("no μop slices in trace")
	}
	if uint64(slices) > res.Committed {
		t.Errorf("more slices (%d) than committed μops (%d)", slices, res.Committed)
	}
}

// TestIntervalMetricsSumToFinalStats validates the heartbeat machinery: the
// per-interval CSV deltas sum exactly to the final counters of the run
// manifest, and the cycle ranges tile the measured region.
func TestIntervalMetricsSumToFinalStats(t *testing.T) {
	res, _, _, csvPath, _ := runTraced(t, ballerino.Config{
		Arch: "Ballerino", Workload: "hash-join", MaxOps: 15_000, WarmupOps: 2_000,
		ObsInterval: 3_000,
	})

	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("only %d CSV rows", len(rows))
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	sum := func(name string) uint64 {
		var total uint64
		for _, row := range rows[1:] {
			v, err := strconv.ParseUint(row[col[name]], 10, 64)
			if err != nil {
				t.Fatalf("column %s: %v", name, err)
			}
			total += v
		}
		return total
	}

	st := res.Manifest.Stats
	for name, want := range map[string]uint64{
		"committed":       st.Committed,
		"fetched":         st.Fetched,
		"issued":          st.Issued,
		"flushes":         st.Flushes,
		"squashed":        st.Squashed,
		"dispatch_stalls": st.DispatchStalls,
		"violations":      st.Violations,
		"mispredicts":     st.Mispredicts,
		"cycles":          st.Cycles,
	} {
		if got := sum(name); got != want {
			t.Errorf("sum(%s) = %d, want final %d", name, got, want)
		}
	}
	// Intervals must tile the measured region: each row starts where the
	// previous ended. The first row starts at the warm-up boundary.
	prevEnd, _ := strconv.ParseUint(rows[1][col["start_cycle"]], 10, 64)
	for i, row := range rows[1:] {
		start, _ := strconv.ParseUint(row[col["start_cycle"]], 10, 64)
		end, _ := strconv.ParseUint(row[col["end_cycle"]], 10, 64)
		if start != prevEnd {
			t.Errorf("row %d starts at %d, previous ended at %d", i, start, prevEnd)
		}
		if end <= start {
			t.Errorf("row %d empty range [%d, %d]", i, start, end)
		}
		prevEnd = end
	}
	if res.Manifest.Intervals != len(rows)-1 {
		t.Errorf("manifest intervals = %d, CSV rows = %d", res.Manifest.Intervals, len(rows)-1)
	}
}

// TestJSONLEventsConsistent validates the JSONL sink: every line parses,
// and the commit-event count equals the committed-μop counter.
func TestJSONLEventsConsistent(t *testing.T) {
	res, _, eventsPath, _, _ := runTraced(t, ballerino.Config{
		Arch: "OoO", Workload: "stream", MaxOps: 10_000,
	})

	f, err := os.Open(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	counts := map[string]uint64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		counts[line.Kind]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if counts["commit"] != res.Committed {
		t.Errorf("commit events = %d, committed = %d", counts["commit"], res.Committed)
	}
	if counts["issue"] != res.Manifest.Stats.Issued {
		t.Errorf("issue events = %d, issued = %d", counts["issue"], res.Manifest.Stats.Issued)
	}
	for _, kind := range []string{"fetch", "decode", "dispatch", "interval"} {
		if counts[kind] == 0 {
			t.Errorf("no %q events", kind)
		}
	}
}

// TestManifestWritten validates the run manifest: written to the requested
// path, schema-tagged, and carrying the metrics registry dump.
func TestManifestWritten(t *testing.T) {
	res, _, _, _, manifestPath := runTraced(t, ballerino.Config{
		Arch: "Ballerino", Workload: "stream", MaxOps: 10_000,
	})

	b, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("manifest is not JSON: %v", err)
	}
	if m.Schema != obs.ManifestSchema {
		t.Errorf("schema = %q, want %q", m.Schema, obs.ManifestSchema)
	}
	if m.Stats.Committed != res.Committed || m.Stats.Cycles != res.Cycles {
		t.Errorf("manifest stats %+v != result (%d committed, %d cycles)",
			m.Stats, res.Committed, res.Cycles)
	}
	if m.Sim.Arch != "Ballerino" || m.Sim.Workload != "stream" {
		t.Errorf("manifest sim = %+v", m.Sim)
	}
	if m.Metrics == nil || len(m.Metrics.Histograms) == 0 {
		t.Error("manifest missing metrics dump")
	}
	var delayN uint64
	for _, h := range m.Metrics.Histograms {
		switch h.Name {
		case "issue_delay.Ld", "issue_delay.LdC", "issue_delay.Rst":
			delayN += h.N
		}
	}
	if delayN != m.Stats.Committed {
		t.Errorf("delay histogram samples = %d, committed = %d", delayN, m.Stats.Committed)
	}
	// Scheduler counters folded into the registry.
	found := false
	for name := range m.Metrics.Counters {
		if len(name) > 6 && name[:6] == "sched." {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no sched.* counters in metrics dump: %v", m.Metrics.Counters)
	}
	// Sinks: chrome-trace, events-jsonl, metrics-csv + the manifest itself.
	if len(m.Sinks) != 4 {
		t.Errorf("manifest sinks = %+v", m.Sinks)
	}
}

// TestManifestAlwaysPopulated: Result.Manifest is present even with no
// observability path configured (no files written, no recorder attached).
func TestManifestAlwaysPopulated(t *testing.T) {
	res, err := ballerino.Run(ballerino.Config{Arch: "InO", Workload: "stream", MaxOps: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Manifest
	if m == nil {
		t.Fatal("nil manifest without sinks")
	}
	if m.Schema != obs.ManifestSchema || m.Stats.Committed != res.Committed {
		t.Errorf("manifest = %+v", m)
	}
	if m.Metrics != nil {
		t.Error("metrics dump present without a recorder")
	}
	if len(m.Sinks) != 0 {
		t.Errorf("sinks = %+v, want none", m.Sinks)
	}
	if m.WallSeconds <= 0 {
		t.Errorf("wall seconds = %v", m.WallSeconds)
	}
}

// TestManifestDefaultPath: with a trace sink but no explicit manifest path,
// the manifest lands alongside the first sink.
func TestManifestDefaultPath(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.trace.json")
	if _, err := ballerino.Run(ballerino.Config{
		Arch: "Ballerino", Workload: "stream", MaxOps: 5_000, TracePath: tracePath,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tracePath + ".manifest.json"); err != nil {
		t.Errorf("default manifest path: %v", err)
	}
}
