package ballerino

import (
	"testing"
)

func TestRunDefaults(t *testing.T) {
	res, err := Run(Config{MaxOps: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arch != "Ballerino" || res.Workload != "stream" || res.Width != 8 {
		t.Errorf("defaults: %+v", res)
	}
	if res.Committed != 20_000 {
		t.Errorf("committed = %d", res.Committed)
	}
	if res.IPC <= 0 || res.IPC > 8 {
		t.Errorf("IPC = %v", res.IPC)
	}
	if res.EnergyPJ <= 0 || res.EDP <= 0 || res.Efficiency <= 0 {
		t.Errorf("energy fields: %v %v %v", res.EnergyPJ, res.EDP, res.Efficiency)
	}
	if res.TimeSeconds <= 0 {
		t.Errorf("time = %v", res.TimeSeconds)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Arch: "bogus", MaxOps: 1000}); err == nil {
		t.Error("bogus arch accepted")
	}
	if _, err := Run(Config{Workload: "bogus", MaxOps: 1000}); err == nil {
		t.Error("bogus workload accepted")
	}
	if _, err := Run(Config{DVFS: "L9", MaxOps: 1000}); err == nil {
		t.Error("bogus DVFS level accepted")
	}
	if _, err := Run(Config{Width: 5, MaxOps: 1000}); err == nil {
		t.Error("bogus width accepted")
	}
}

func TestListingsNonEmpty(t *testing.T) {
	if len(Architectures()) < 10 {
		t.Errorf("architectures: %v", Architectures())
	}
	if len(Kernels()) < 10 {
		t.Errorf("kernels: %v", Kernels())
	}
}

func TestDelayMapComplete(t *testing.T) {
	res, err := Run(Config{Arch: "OoO", Workload: "compute", MaxOps: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, cls := range []string{"Ld", "LdC", "Rst", "All"} {
		if _, ok := res.Delay[cls]; !ok {
			t.Errorf("missing delay class %q", cls)
		}
	}
	if res.Delay["All"].Count != res.Committed {
		t.Errorf("All count %d != committed %d", res.Delay["All"].Count, res.Committed)
	}
	if res.Delay["All"].Total() <= 0 {
		t.Error("zero total delay")
	}
}

func TestEnergyComponentsSumToTotal(t *testing.T) {
	res, err := Run(Config{Arch: "CES", Workload: "reduction", MaxOps: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range res.EnergyByComponent {
		sum += v
	}
	if diff := sum - res.EnergyPJ; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("component sum %v != total %v", sum, res.EnergyPJ)
	}
	if len(res.EnergyByComponent) != 9 {
		t.Errorf("components = %d, want 9", len(res.EnergyByComponent))
	}
}

func TestDVFSScaling(t *testing.T) {
	hi, err := Run(Config{Arch: "OoO", Workload: "compute", MaxOps: 20_000, DVFS: "L4"})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Run(Config{Arch: "OoO", Workload: "compute", MaxOps: 20_000, DVFS: "L1"})
	if err != nil {
		t.Fatal(err)
	}
	if lo.Cycles != hi.Cycles {
		t.Error("DVFS changed cycle counts")
	}
	if lo.TimeSeconds <= hi.TimeSeconds {
		t.Error("lower clock not slower in wall-clock")
	}
	if lo.EnergyPJ >= hi.EnergyPJ {
		t.Error("lower voltage not lower energy")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Arch: "Ballerino", Workload: "hash-join", MaxOps: 15_000}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.IPC != b.IPC || a.EnergyPJ != b.EnergyPJ {
		t.Errorf("simulation not deterministic: %v vs %v cycles", a.Cycles, b.Cycles)
	}
}

func TestNumPIQsOverrideChangesBehaviour(t *testing.T) {
	small, err := Run(Config{Arch: "Ballerino", Workload: "sparse-trees", MaxOps: 30_000, NumPIQs: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(Config{Arch: "Ballerino", Workload: "sparse-trees", MaxOps: 30_000, NumPIQs: 11})
	if err != nil {
		t.Fatal(err)
	}
	if big.IPC <= small.IPC {
		t.Errorf("more P-IQs not faster on chain-rich kernel: %.3f vs %.3f", big.IPC, small.IPC)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); got != 4 {
		t.Errorf("GeoMean(2,8) = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean with negative != 0")
	}
}

func TestWarmupReportsMeasuredRegionOnly(t *testing.T) {
	cold, err := Run(Config{Arch: "OoO", Workload: "reduction", MaxOps: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(Config{Arch: "OoO", Workload: "reduction", MaxOps: 30_000, WarmupOps: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	// The warm-up boundary lands on a commit-group edge, so up to one
	// commit width of μops may shift between the phases.
	if warm.Committed < 30_000-8 || warm.Committed > 30_000 {
		t.Fatalf("measured commits = %d, want ≈30000", warm.Committed)
	}
	// A warmed reduction run (L2-resident working set) must beat the
	// cold-cache run.
	if warm.IPC <= cold.IPC {
		t.Errorf("warmed IPC %.3f not above cold %.3f", warm.IPC, cold.IPC)
	}
}

func TestExtraWorkloadsRunnable(t *testing.T) {
	var extras []string
	for _, k := range Kernels() {
		if k.Extra {
			extras = append(extras, k.Name)
		}
	}
	if len(extras) < 3 {
		t.Fatalf("extras = %v", extras)
	}
	for _, name := range extras {
		res, err := Run(Config{Arch: "Ballerino", Workload: name, MaxOps: 8_000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Committed != 8_000 {
			t.Errorf("%s committed %d", name, res.Committed)
		}
	}
}
