package ballerino_test

import (
	"fmt"
	"log"
	"sort"

	ballerino "repro"
)

// ExampleRun simulates the Ballerino scheduler on the quickstart workload.
func ExampleRun() {
	res, err := ballerino.Run(ballerino.Config{
		Arch:     "Ballerino",
		Workload: "compute",
		MaxOps:   50_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Arch, "committed", res.Committed, "μops")
	fmt.Println("IPC above in-order levels:", res.IPC > 1.0)
	// Output:
	// Ballerino committed 50000 μops
	// IPC above in-order levels: true
}

// ExampleRun_comparison ranks two schedulers on the same kernel.
func ExampleRun_comparison() {
	ipc := func(arch string) float64 {
		r, err := ballerino.Run(ballerino.Config{Arch: arch, Workload: "sparse-trees", MaxOps: 40_000})
		if err != nil {
			log.Fatal(err)
		}
		return r.IPC
	}
	fmt.Println("Ballerino beats CASINO on gather-heavy code:", ipc("Ballerino") > ipc("CASINO"))
	// Output:
	// Ballerino beats CASINO on gather-heavy code: true
}

// ExampleKernels lists the kernel suite from the catalogue.
func ExampleKernels() {
	var ws []string
	for _, k := range ballerino.Kernels() {
		if !k.Extra {
			ws = append(ws, k.Name)
		}
	}
	sort.Strings(ws)
	for _, w := range ws[:3] {
		fmt.Println(w)
	}
	// Output:
	// branchy
	// compute
	// hash-join
}
