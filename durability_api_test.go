package ballerino_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	ballerino "repro"
	"repro/uprog"
)

// TestRunContextDeadlineIsTimeoutStage: a run killed by its context's
// deadline returns Stage "timeout" unwrapping to DeadlineExceeded —
// distinct from the Stage "canceled" a cancelled caller sees — so the
// job-status API can tell a -job-timeout kill from caller cancellation.
func TestRunContextDeadlineIsTimeoutStage(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := ballerino.RunContext(ctx, ballerino.Config{
		Arch: "Ballerino", Workload: "stream", MaxOps: 5_000_000,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	var se *ballerino.SimError
	if !errors.As(err, &se) || se.Stage != "timeout" {
		t.Fatalf("err = %+v, want *SimError with Stage \"timeout\"", err)
	}
}

// TestContentKeyIdentity: equal configurations (after defaulting) share
// a content key; any timing-relevant knob separates them; custom
// programs have no durable identity.
func TestContentKeyIdentity(t *testing.T) {
	base := ballerino.Config{Arch: "Ballerino", Workload: "stream", MaxOps: 10_000}
	k1, err := base.ContentKey()
	if err != nil {
		t.Fatal(err)
	}
	// Defaulted and explicit forms agree.
	k2, err := ballerino.Config{
		Arch: "Ballerino", Width: 8, Workload: "stream", MaxOps: 10_000, DVFS: "L4",
	}.ContentKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("defaulted key %q != explicit key %q", k1, k2)
	}
	for name, alt := range map[string]ballerino.Config{
		"arch":     {Arch: "OoO", Workload: "stream", MaxOps: 10_000},
		"width":    {Arch: "Ballerino", Width: 4, Workload: "stream", MaxOps: 10_000},
		"workload": {Arch: "Ballerino", Workload: "store-load", MaxOps: 10_000},
		"ops":      {Arch: "Ballerino", Workload: "stream", MaxOps: 20_000},
		"warmup":   {Arch: "Ballerino", Workload: "stream", MaxOps: 10_000, WarmupOps: 1_000},
		"mdp":      {Arch: "Ballerino", Workload: "stream", MaxOps: 10_000, DisableMDP: true},
		"dvfs":     {Arch: "Ballerino", Workload: "stream", MaxOps: 10_000, DVFS: "L2"},
		"faults":   {Arch: "Ballerino", Workload: "stream", MaxOps: 10_000, FaultSpec: "seed=1,jitter=8"},
	} {
		k, err := alt.ContentKey()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == k1 {
			t.Errorf("%s variant has the same content key %q", name, k)
		}
	}
	b := uprog.NewBuilder("custom-loop")
	top := b.NewLabel()
	b.Bind(top)
	b.AddImm(uprog.R(1), uprog.R(1), 1)
	b.Jmp(top)
	if _, err := (ballerino.Config{Custom: b.Build()}).ContentKey(); err == nil {
		t.Error("custom program produced a durable content key")
	}
}

// TestCanonicalManifestByteIdentical: two independent runs of one
// configuration serialize to byte-identical canonical manifests, and the
// canonical form strips the environment-volatile fields.
func TestCanonicalManifestByteIdentical(t *testing.T) {
	cfg := ballerino.Config{Arch: "Ballerino", Workload: "store-load", MaxOps: 10_000}
	r1, err := ballerino.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ballerino.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := r1.Manifest.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r2.Manifest.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("canonical manifests differ:\n%s\n%s", b1, b2)
	}
	c := r1.Manifest.Canonical()
	if c.CreatedAt != "" || c.GoVersion != "" || c.Hostname != "" || c.WallSeconds != 0 {
		t.Errorf("canonical manifest keeps volatile fields: %+v", c)
	}
	if c.Stats != r1.Manifest.Stats || c.Schema == "" {
		t.Errorf("canonical manifest lost substantive fields")
	}
}
