package ballerino_test

import (
	"math"
	"testing"

	ballerino "repro"
	"repro/internal/workload"
)

// TestCalibratedIPC is the closed-form cross-check (companion to
// TestTopdownLittlesLaw): every catalogued calibrated operating point,
// run on the unified out-of-order scheduler, must reach a steady-state
// IPC within 10% of the Carroll–Lin queuing-model prediction. The warm-up
// discards the loop's fill transient so the measurement is the
// steady-state recurrence throughput the model describes.
func TestCalibratedIPC(t *testing.T) {
	for name, chains := range workload.CalibPresets {
		pred, err := workload.PredictIPC(chains, 8)
		if err != nil {
			t.Fatalf("%s: predict: %v", name, err)
		}
		res, err := ballerino.Run(ballerino.Config{
			Arch: "OoO", Workload: name, MaxOps: 200_000, WarmupOps: 20_000,
		})
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		rel := math.Abs(res.IPC-pred) / pred
		if rel > 0.10 {
			t.Errorf("%s: measured IPC %.4f vs predicted %.4f (%.1f%% off, tolerance 10%%)",
				name, res.IPC, pred, 100*rel)
		} else {
			t.Logf("%s: measured %.4f predicted %.4f (%.1f%% off)", name, res.IPC, pred, 100*rel)
		}
	}
}
