package ballerino_test

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	ballerino "repro"
)

// replayWorkloads mirrors the golden corpus grid (internal/pipeline's
// goldenWorkloads): the tier-1 micro set exercising streaming, dependent
// loads, store-to-load traffic and branches.
var replayWorkloads = []string{"stream", "pointer-chase", "store-load", "branchy"}

const replayOps = 30_000

// TestTraceRoundTripDifferential is the differential replay corpus: every
// tier-1 kernel trace is exported to ballerino.trace/v1, re-imported, and
// run on all twelve architectures; the canonical run manifest must be
// byte-identical to a run fed the in-memory trace. This locks down both
// directions of the format at once — the writer records everything the
// timing model consumes, and the reader's reconstruction of the dynamic
// stream from the minimal encoding mirrors the functional interpreter
// field for field.
func TestTraceRoundTripDifferential(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	for _, wl := range replayWorkloads {
		base := ballerino.Config{Workload: wl, MaxOps: replayOps}
		mem, err := ballerino.PrepareTrace(ctx, base)
		if err != nil {
			t.Fatalf("%s: prepare: %v", wl, err)
		}
		path := filepath.Join(dir, wl+".balltrace")
		if err := ballerino.ExportTrace(path, mem); err != nil {
			t.Fatalf("%s: export: %v", wl, err)
		}
		imp, err := ballerino.ImportTrace(path)
		if err != nil {
			t.Fatalf("%s: import: %v", wl, err)
		}
		if imp.Key() != mem.Key() {
			t.Fatalf("%s: imported key %q != in-memory key %q", wl, imp.Key(), mem.Key())
		}
		if imp.Ops() != mem.Ops() {
			t.Fatalf("%s: imported ops %d != in-memory ops %d", wl, imp.Ops(), mem.Ops())
		}
		for _, arch := range ballerino.Architectures() {
			cfg := base
			cfg.Arch = arch
			cfg.Trace = mem
			r1, err := ballerino.Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: in-memory run: %v", arch, wl, err)
			}
			r2, err := ballerino.Run(imp.Configure(ballerino.Config{Arch: arch}))
			if err != nil {
				t.Fatalf("%s/%s: replay run: %v", arch, wl, err)
			}
			b1, err := r1.Manifest.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			b2, err := r2.Manifest.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Errorf("%s/%s: replay manifest differs from in-memory manifest:\n%s\n%s",
					arch, wl, b1, b2)
			}
		}
	}
}

// TestTraceImportContentKeyStable: a re-imported trace reproduces the
// original config's content key exactly, so the durable job store and
// TraceCache dedup a replayed file against an in-memory generation of the
// same kernel byte-stably.
func TestTraceImportContentKeyStable(t *testing.T) {
	ctx := context.Background()
	orig := ballerino.Config{Arch: "OoO", Workload: "stream", MaxOps: replayOps}
	mem, err := ballerino.PrepareTrace(ctx, orig)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "stream.balltrace")
	if err := ballerino.ExportTrace(path, mem); err != nil {
		t.Fatal(err)
	}
	imp, err := ballerino.ImportTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := orig.ContentKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := imp.Configure(ballerino.Config{Arch: "OoO"}).ContentKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("replay content key %q != original %q", k2, k1)
	}
}

// TestTraceCacheImportDedup: importing a file whose trace the cache
// already generated is a hit on the existing entry — the header's
// normalized key matches the generation key, and the μop stream is not
// decoded a second time.
func TestTraceCacheImportDedup(t *testing.T) {
	ctx := context.Background()
	tc := ballerino.NewTraceCache(0)
	cfg := ballerino.Config{Workload: "pointer-chase", MaxOps: replayOps}
	mem, err := tc.Prepare(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pc.balltrace")
	if err := ballerino.ExportTrace(path, mem); err != nil {
		t.Fatal(err)
	}
	imp, err := tc.Import(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	if imp != mem {
		t.Error("import of an exported trace did not return the cached entry")
	}
	if s := tc.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("cache stats = %+v, want exactly one hit on one generated entry", s)
	}
	// A cold cache imports the file itself and subsequent imports hit.
	cold := ballerino.NewTraceCache(0)
	first, err := cold.Import(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	again, err := cold.Import(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Error("second import of one file decoded a second copy")
	}
	if first.Key() != mem.Key() {
		t.Errorf("cold-import key %q != generated key %q", first.Key(), mem.Key())
	}
}
