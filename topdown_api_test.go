package ballerino_test

import (
	"bytes"
	"strings"
	"testing"

	ballerino "repro"
	"repro/internal/topdown"
)

// TestTopdownReport verifies the public surface: a Topdown run returns a
// conserved, CPI-stacked report; a plain run returns nil.
func TestTopdownReport(t *testing.T) {
	cfg := ballerino.Config{Arch: "Ballerino", Workload: "stream", MaxOps: 20_000, Topdown: true}
	res, err := ballerino.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Topdown
	if r == nil {
		t.Fatal("Topdown run returned no report")
	}
	if r.Width != res.Width || r.Cycles != res.Cycles {
		t.Errorf("report identity: width %d cycles %d, run width %d cycles %d",
			r.Width, r.Cycles, res.Width, res.Cycles)
	}
	var sum uint64
	for _, c := range r.Counts {
		sum += c
	}
	if sum != r.TotalSlots || r.TotalSlots != uint64(r.Width)*r.Cycles {
		t.Errorf("conservation: slot sum %d, total %d, width×cycles %d",
			sum, r.TotalSlots, uint64(r.Width)*r.Cycles)
	}
	// The CPI stack must sum back to the run's CPI.
	var cpi float64
	for _, v := range r.CPIStack {
		cpi += v
	}
	if want := float64(res.Cycles) / float64(res.Committed); cpi < want*0.999 || cpi > want*1.001 {
		t.Errorf("CPI stack sums to %.4f, run CPI is %.4f", cpi, want)
	}
	if res.Manifest.Topdown != r {
		t.Error("manifest does not carry the same report")
	}

	off, err := ballerino.Run(ballerino.Config{Arch: "Ballerino", Workload: "stream", MaxOps: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if off.Topdown != nil || off.Manifest.Topdown != nil {
		t.Error("plain run carries a topdown report")
	}
}

// TestTopdownManifestByteStable is the golden-corpus guard: with Topdown
// off (the default) the canonical run manifest must be byte-for-byte what
// it was before the feature existed — no "topdown" key, no reordered
// fields — and a Topdown run must differ only by that added section.
func TestTopdownManifestByteStable(t *testing.T) {
	base := ballerino.Config{Arch: "OoO", Workload: "store-load", MaxOps: 15_000}

	off1, err := ballerino.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	off2, err := ballerino.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	on := base
	on.Topdown = true
	onRes, err := ballerino.Run(on)
	if err != nil {
		t.Fatal(err)
	}

	j1, err := off1.Manifest.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := off2.Manifest.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("two identical Topdown-off runs produced different canonical manifests")
	}
	if bytes.Contains(j1, []byte(`"topdown"`)) {
		t.Error("Topdown-off manifest contains a topdown key")
	}

	jOn, err := onRes.Manifest.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(jOn, []byte(`"topdown"`)) {
		t.Error("Topdown-on manifest missing its topdown section")
	}
	// Stripping the section must recover the exact off-state bytes: the
	// accounting may not perturb any timing-visible statistic.
	stripped := *onRes.Manifest
	stripped.Topdown = nil
	jStripped, err := stripped.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jStripped, j1) {
		t.Errorf("Topdown-on manifest differs beyond its topdown section:\n--- off ---\n%s\n--- on stripped ---\n%s", j1, jStripped)
	}
}

// TestTopdownContentKey pins the durable-store identity rules: Topdown-off
// keys are byte-stable against the pre-feature format, and a Topdown run
// gets a distinct key (its stored manifest has extra content).
func TestTopdownContentKey(t *testing.T) {
	base := ballerino.Config{Arch: "Ballerino", Workload: "stream"}
	kOff, err := base.ContentKey()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(kOff, "td:") {
		t.Errorf("Topdown-off key %q mentions topdown (breaks stored-result lookups)", kOff)
	}
	on := base
	on.Topdown = true
	kOn, err := on.ContentKey()
	if err != nil {
		t.Fatal(err)
	}
	if kOn == kOff {
		t.Error("Topdown-on and -off configs share a content key")
	}
	if !strings.HasPrefix(kOn, kOff) {
		t.Errorf("Topdown key %q is not a suffix extension of %q", kOn, kOff)
	}
}

// TestTopdownCategoriesAreStable pins the category names: they are JSON
// map keys, CSV columns and Prometheus label values, so renaming one is a
// breaking schema change that must be made consciously.
func TestTopdownCategoriesAreStable(t *testing.T) {
	want := []string{
		"base", "frontend", "branch_recovery", "rob_full", "rename_stall",
		"dispatch_q_full", "iq_full", "lsq_full", "dep_wait", "memory",
		"fu_contention",
	}
	got := topdown.Names()
	if len(got) != len(want) {
		t.Fatalf("category count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("category %d = %q, want %q", i, got[i], want[i])
		}
	}
}
