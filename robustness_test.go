package ballerino

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/faults"
)

// TestAuditCampaign runs every architecture over two contrasting kernels
// with the full self-verification stack on: per-cycle invariant audits,
// commit-stream checking and the golden-model replay. Any invariant
// violation, deadlock or architectural divergence fails the campaign.
func TestAuditCampaign(t *testing.T) {
	for _, arch := range Architectures() {
		for _, wl := range []string{"stream", "hash-join"} {
			arch, wl := arch, wl
			t.Run(arch+"/"+wl, func(t *testing.T) {
				t.Parallel()
				res, err := Run(Config{
					Arch: arch, Workload: wl, MaxOps: 20_000, WarmupOps: 2_000, Audit: true,
				})
				if err != nil {
					t.Fatalf("audited run failed: %v", err)
				}
				if res.AuditChecks == 0 {
					t.Fatal("auditor never ran")
				}
				if res.GoldenOps != 22_000 {
					t.Fatalf("golden model verified %d μops, want 22000", res.GoldenOps)
				}
			})
		}
	}
}

// TestFaultCampaign32Seeds injects 32 deterministic fault campaigns —
// latency jitter, flush storms, dispatch squeezes and fabricated memory
// dependence waits — across rotating architectures and kernels, with the
// auditor and golden model watching. Faults are timing-only, so every run
// must still commit the exact architectural trace; a run may only fail
// with a typed error carrying an autopsy, never a panic (runNoPanic).
func TestFaultCampaign32Seeds(t *testing.T) {
	archs := Architectures()
	kernels := []string{"stream", "hash-join", "pointer-chase", "mixed"}
	for seed := uint64(0); seed < 32; seed++ {
		seed := seed
		plan := faults.CampaignPlan(seed)
		arch := archs[int(seed)%len(archs)]
		wl := kernels[int(seed)%len(kernels)]
		t.Run(fmt.Sprintf("seed%02d_%s_%s", seed, arch, wl), func(t *testing.T) {
			t.Parallel()
			res, err := runNoPanic(t, "fault campaign", Config{
				Arch: arch, Workload: wl, MaxOps: 10_000, Audit: true,
				FaultSpec: plan.String(),
			})
			if err != nil {
				t.Fatalf("plan %s: %v", plan, err)
			}
			if res.GoldenOps != 10_000 {
				t.Fatalf("plan %s: golden model verified %d μops, want 10000", plan, res.GoldenOps)
			}
			injected := uint64(0)
			for _, n := range res.InjectedFaults {
				injected += n
			}
			if injected == 0 {
				t.Fatalf("plan %s: no faults injected", plan)
			}
		})
	}
}

// TestAuditFullMatrix is the acceptance sweep: every architecture × every
// named kernel × 50k μops under full audit. It takes several minutes, so
// it only runs when BALLERINO_AUDIT_FULL is set (tier-1 covers the smaller
// TestAuditCampaign).
func TestAuditFullMatrix(t *testing.T) {
	if os.Getenv("BALLERINO_AUDIT_FULL") == "" {
		t.Skip("set BALLERINO_AUDIT_FULL=1 to run the full audited matrix")
	}
	for _, arch := range Architectures() {
		for _, k := range Kernels() {
			if k.Extra {
				continue
			}
			arch, wl := arch, k.Name
			t.Run(arch+"/"+wl, func(t *testing.T) {
				t.Parallel()
				res, err := Run(Config{Arch: arch, Workload: wl, MaxOps: 50_000, Audit: true})
				if err != nil {
					t.Fatalf("audited run failed: %v", err)
				}
				if res.GoldenOps == 0 || res.AuditChecks == 0 {
					t.Fatalf("self-verification did not run: %+v", res)
				}
			})
		}
	}
}
